// Command privim trains a differentially private GNN for influence
// maximization and reports the selected seed set with its privacy
// accounting, reproducing the end-to-end PrivIM pipeline on one dataset.
//
// Usage:
//
//	privim -preset lastfm -scale 0.05 -mode privim* -eps 3 -k 10
//	privim -graph my.edges -mode privim -eps 1 -k 20
//	privim -journal run.jsonl -debug-addr localhost:6060 -preset email
//	privim -trace-out trace.json -slow-span 2s -preset email
//	privim -stats-every 10s -profile-dir ./profiles -preset email
//
// -stats-every prints a one-line telemetry summary (iterations, loss, ε
// spent, goroutines, heap) to stderr each interval and keeps an
// in-process metric history, queryable at the -debug-addr listener's
// /v1/stats and /v1/alerts. -profile-dir captures pprof heap+CPU pairs
// when a -slow-span watchdog trips, pruned to the newest -profile-keep.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"privim/internal/cliutil"
	"privim/internal/dataset"
	"privim/internal/diffusion"
	"privim/internal/gnn"
	"privim/internal/graph"
	"privim/internal/im"
	"privim/internal/ledger"
	"privim/internal/obs"
	"privim/internal/privim"
	"privim/internal/tensor"
)

func main() {
	var (
		preset      = flag.String("preset", "email", "dataset preset (ignored when -graph is set)")
		scale       = flag.Float64("scale", 0.05, "dataset scale fraction")
		graphPath   = flag.String("graph", "", "edge-list file to load instead of a preset")
		mode        = flag.String("mode", "privim*", "method: privim, privim+scs, privim*, non-private, egn, hp, hp-grat")
		gnnKind     = flag.String("gnn", "", "architecture override: gcn, sage, gat, grat, gin")
		eps         = flag.Float64("eps", 3, "privacy budget epsilon (0 = non-private)")
		k           = flag.Int("k", 10, "seed set size")
		iters       = flag.Int("iters", 40, "training iterations T")
		n           = flag.Int("n", 20, "subgraph size")
		threshold   = flag.Int("m", 4, "frequency threshold M (PrivIM*)")
		theta       = flag.Int("theta", 10, "in-degree bound (PrivIM naive)")
		seed        = flag.Int64("seed", 1, "random seed")
		compare     = flag.Bool("celf", false, "also run CELF for a coverage ratio")
		steps       = flag.Int("j", 1, "diffusion steps for evaluation and loss")
		savePath    = flag.String("save", "", "write the trained model checkpoint to this path")
		loadPath    = flag.String("load", "", "skip training and score with this checkpoint")
		workers     = cliutil.RegisterWorkers(flag.CommandLine)
		obsFlags    cliutil.ObserverFlags
		ckptFlags   cliutil.CheckpointFlags
		budgetFlags cliutil.BudgetFlags
	)
	obsFlags.Register(flag.CommandLine)
	ckptFlags.Register(flag.CommandLine)
	budgetFlags.Register(flag.CommandLine, "budget-file")
	flag.Parse()
	cliutil.ApplyWorkers(*workers)

	stack, err := obsFlags.Setup("privim", nil)
	if err != nil {
		fatal(err)
	}
	defer stack.Close()
	observer := stack.Observer
	ctx := stack.Context(context.Background())
	if observer != nil {
		fmt.Printf("trace: %s\n", stack.TraceID)
	}

	// SIGINT/SIGTERM cancel the run instead of killing it: training stops
	// at its next preemption point, writes a final checkpoint (with
	// -checkpoint-dir), commits the ε actually spent, and reports where to
	// resume — so an interrupt discards nothing. A second signal exits
	// immediately.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "privim: interrupt — stopping at the next preemption point (interrupt again to kill)")
		cancelRun()
		<-sigCh
		os.Exit(130)
	}()

	g, err := loadGraph(*graphPath, *preset, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	st := g.ComputeStats()
	fmt.Printf("graph: |V|=%d |E|=%d avg-degree=%.2f\n", st.Nodes, st.Edges, st.AvgDegree)

	cfg := privim.Config{
		Mode:         privim.Mode(*mode),
		Epsilon:      *eps,
		SubgraphSize: *n,
		Threshold:    *threshold,
		Theta:        *theta,
		Iterations:   *iters,
		LossSteps:    *steps,
		Seed:         *seed,
		Observer:     observer,

		// Crash safety: with -checkpoint-dir, an interrupted run picks up
		// from its last checkpoint and finishes bit-for-bit identically.
		CheckpointDir:   ckptFlags.Dir,
		CheckpointEvery: ckptFlags.Every,
	}
	if *gnnKind != "" {
		cfg.GNNKind = gnn.Kind(*gnnKind)
	}

	// Local privacy-budget guard: with -budget/-budget-file, each private
	// run against this graph draws down a durable per-graph ledger — the
	// single-machine twin of the daemon's per-tenant enforcement. The run
	// reserves its requested ε up front (an exhausted ledger refuses to
	// train), commits its composed RDP spend on success, and on failure
	// commits the ε the trainer had already released.
	var (
		budgetLedger *ledger.Ledger
		budgetRef    string
		budgetFP     string
		lastEps      atomic.Uint64
	)
	privateRun := privim.Mode(*mode) != privim.ModeNonPrivate && *eps > 0 && !math.IsInf(*eps, 1)
	if *loadPath == "" && privateRun && (budgetFlags.Budget > 0 || budgetFlags.Path != "") {
		budgetLedger, err = ledger.Open(ledger.Options{
			Budget: budgetFlags.Budget,
			Delta:  budgetFlags.Delta,
			Path:   budgetFlags.Path,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "privim: "+format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		budgetFP = fmt.Sprintf("%016x", g.Fingerprint())
		budgetRef = "run-" + stack.TraceID
		if cfg.Delta == 0 {
			// Compose at the ledger's δ so the committed spend matches the
			// requested ε (see serve's budget-charged jobs for the same rule).
			cfg.Delta = budgetLedger.Delta()
		}
		if err := budgetLedger.Reserve(budgetRef, "local", budgetFP, *eps); err != nil {
			fatal(err)
		}
		cfg.Observer = obs.Multi(cfg.Observer, obs.ObserverFunc(func(e obs.Event) {
			if it, ok := e.(obs.IterationEnd); ok {
				lastEps.Store(math.Float64bits(it.EpsilonSpent))
			}
		}))
	}

	var seeds []graph.NodeID
	if *loadPath != "" {
		model, err := loadCheckpoint(*loadPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded checkpoint %s (%s, %d params)\n", *loadPath, model.Cfg.Kind, model.Params.NumParams())
		x := tensor.FromSlice(g.NumNodes(), dataset.NumStructuralFeatures, dataset.StructuralFeatures(g))
		seeds = im.TopKScores(model.Score(g, x), *k)
	} else {
		res, err := privim.TrainContext(runCtx, g, cfg)
		if err != nil {
			var cerr *privim.CanceledError
			if errors.As(err, &cerr) {
				// Interrupted at an iteration boundary: settle the budget with
				// the ε the completed iterations actually released (never the
				// full-run figure) and point at the resume checkpoint.
				if budgetLedger != nil {
					acct, _ := cerr.Partial.Accountant()
					budgetLedger.Commit(budgetRef, "local", budgetFP, ledger.Charge{
						Acct: acct, Iterations: cerr.Iter, Epsilon: cerr.Partial.EpsilonSpent,
					})
				}
				fmt.Fprintf(os.Stderr, "privim: canceled after %d/%d iterations (ε spent %.4f of %.4f)\n",
					cerr.Iter, cerr.Partial.Config.Iterations, cerr.Partial.EpsilonSpent, *eps)
				if cerr.CheckpointPath != "" {
					fmt.Fprintf(os.Stderr, "privim: final checkpoint %s — rerun with the same flags to resume bit-for-bit\n",
						cerr.CheckpointPath)
				}
				stack.Close()
				os.Exit(130)
			}
			if budgetLedger != nil {
				budgetLedger.Commit(budgetRef, "local", budgetFP,
					ledger.Charge{Epsilon: math.Float64frombits(lastEps.Load())})
			}
			fatal(err)
		}
		if budgetLedger != nil {
			acct, _ := res.Accountant()
			budgetLedger.Commit(budgetRef, "local", budgetFP, ledger.Charge{
				Acct: acct, Iterations: res.Config.Iterations, Epsilon: res.EpsilonSpent,
			})
			b := budgetLedger.Balance("local", budgetFP)
			if b.Enforced {
				fmt.Printf("privacy budget: ε %.4f committed of %.4f (%.4f remaining) for graph %s\n",
					b.Committed, b.Budget, b.Remaining, budgetFP)
			} else {
				fmt.Printf("privacy budget: ε %.4f committed for graph %s\n", b.Committed, budgetFP)
			}
		}
		fmt.Println(res)
		if *savePath != "" {
			if err := saveCheckpoint(*savePath, res.Model); err != nil {
				fatal(err)
			}
			fmt.Printf("checkpoint written to %s\n", *savePath)
		}
		seeds = res.SelectSeeds(g, *k)
	}
	model := &diffusion.IC{G: g, MaxSteps: *steps}
	spread, err := diffusion.EstimateContext(runCtx, model, seeds, 10, *seed, observer)
	if err != nil {
		canceled(stack.Close, err)
	}
	fmt.Printf("selected %d seeds: %v\n", len(seeds), seeds)
	fmt.Printf("influence spread (j=%d): %.2f of %d nodes\n", *steps, spread, g.NumNodes())

	if *compare {
		celf := &im.CELF{Model: model, Rounds: 10, Seed: *seed, NumNodes: g.NumNodes(), Obs: observer}
		celfSeeds, err := celf.SelectContext(runCtx, *k)
		if err != nil {
			canceled(stack.Close, err)
		}
		ref := diffusion.Estimate(model, celfSeeds, 10, *seed)
		fmt.Printf("CELF reference spread: %.2f  coverage ratio: %.2f%%\n", ref, im.CoverageRatio(spread, ref))
	}
}

// canceled reports an evaluation-phase cancellation and exits with the
// conventional interrupted status.
func canceled(close func(), err error) {
	fmt.Fprintln(os.Stderr, "privim:", err)
	close()
	os.Exit(130)
}

func loadGraph(path, preset string, scale float64, seed int64) (*graph.Graph, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		// Native format carries the privim-edgelist header; anything else
		// is treated as a SNAP-style edge list (dense ID remap, weights
		// assigned uniformly afterwards).
		if bytes.Contains(data, []byte("privim-edgelist")) {
			return graph.ReadEdgeList(bytes.NewReader(data))
		}
		g, err := dataset.LoadSNAP(bytes.NewReader(data), true)
		if err != nil {
			return nil, err
		}
		g.SetUniformWeights(1)
		return g, nil
	}
	ds, err := dataset.Generate(dataset.Preset(preset), dataset.Options{
		Scale: scale, Seed: seed, InfluenceProb: 1,
	})
	if err != nil {
		return nil, err
	}
	return ds.Graph, nil
}

func saveCheckpoint(path string, model *gnn.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := model.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadCheckpoint(path string) (*gnn.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return gnn.Load(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "privim:", err)
	os.Exit(1)
}
