// Command benchjson converts `go test -bench` text output (on stdin) into
// a machine-readable JSON report: per-benchmark ns/op, B/op, and allocs/op
// aggregated across -count repetitions (best-of, the conventional noise
// floor), plus speedup-vs-serial rows for benchmark families that sweep
// pool widths with /workers=N sub-benchmarks. The Makefile's bench target
// pipes into it to produce BENCH_PR3.json; -validate makes it a smoke
// check that the emitter round-trips.
//
// Usage:
//
//	go test -bench=Parallel -benchmem -count=3 . | benchjson -o BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line, e.g.
//
//	BenchmarkParallelGEMM/workers=2-8  142  8205183 ns/op  1064 B/op  18 allocs/op
//
// The B/op and allocs/op columns only appear under -benchmem.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// sample is one parsed benchmark line.
type sample struct {
	iters  int
	nsOp   float64
	bOp    float64
	allocs float64
	hasMem bool
}

// Bench is the aggregated result of one benchmark across repetitions.
type Bench struct {
	Name        string  `json:"name"`
	Count       int     `json:"count"`
	NsPerOp     float64 `json:"ns_per_op"`      // best (minimum) across repetitions
	NsPerOpMean float64 `json:"ns_per_op_mean"` // mean across repetitions
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Speedup compares one /workers=N variant against its family's /workers=1
// baseline (best-of ns/op on both sides).
type Speedup struct {
	Family  string  `json:"family"`
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	Speedup float64 `json:"speedup_vs_serial"`
}

// Delta compares one benchmark against the same-named entry of a
// baseline report. Percentages are computed against max(base, 1) so a
// zero-alloc baseline still yields a finite, JSON-encodable number.
type Delta struct {
	Name            string  `json:"name"`
	BaseNsPerOp     float64 `json:"base_ns_per_op"`
	NsPerOp         float64 `json:"ns_per_op"`
	NsPct           float64 `json:"ns_per_op_delta_pct"`
	BaseAllocsPerOp float64 `json:"base_allocs_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	AllocsPct       float64 `json:"allocs_per_op_delta_pct"`
}

// Report is the emitted JSON document.
type Report struct {
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Baseline   string    `json:"baseline,omitempty"`
	Benchmarks []Bench   `json:"benchmarks"`
	Speedups   []Speedup `json:"speedups,omitempty"`
	Deltas     []Delta   `json:"deltas,omitempty"`
}

func main() {
	out := flag.String("o", "-", "output path (- for stdout)")
	validate := flag.Bool("validate", false, "require at least one benchmark and a round-trippable report")
	baseline := flag.String("baseline", "", "baseline report (a prior benchjson -o file) to diff against")
	maxAllocsRegress := flag.Float64("max-allocs-regress", 0,
		"with -baseline: exit 1 when any benchmark's allocs/op regresses by more than this percentage (0 disables)")
	flag.Parse()

	samples := make(map[string][]sample)
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := stripProcSuffix(m[1])
		s := sample{}
		s.iters, _ = strconv.Atoi(m[2])
		s.nsOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			s.bOp, _ = strconv.ParseFloat(m[4], 64)
			s.allocs, _ = strconv.ParseFloat(m[5], 64)
			s.hasMem = true
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		fatal("benchjson: read: %v", err)
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, name := range order {
		rep.Benchmarks = append(rep.Benchmarks, aggregate(name, samples[name]))
	}
	rep.Speedups = speedups(rep.Benchmarks)
	if *baseline != "" {
		base, err := loadReport(*baseline)
		if err != nil {
			fatal("benchjson: baseline: %v", err)
		}
		rep.Baseline = *baseline
		rep.Deltas = deltas(base, rep.Benchmarks)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("benchjson: marshal: %v", err)
	}
	data = append(data, '\n')

	if *validate {
		if len(rep.Benchmarks) == 0 {
			fatal("benchjson: validate: no benchmark lines parsed")
		}
		var back Report
		if err := json.Unmarshal(data, &back); err != nil {
			fatal("benchjson: validate: emitted JSON does not round-trip: %v", err)
		}
		for _, b := range back.Benchmarks {
			if b.Name == "" || b.NsPerOp <= 0 {
				fatal("benchjson: validate: degenerate entry %+v", b)
			}
		}
	}

	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal("benchjson: %v", err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks (%d speedup rows, %d delta rows) to %s\n",
			len(rep.Benchmarks), len(rep.Speedups), len(rep.Deltas), *out)
	}

	if *baseline != "" && *maxAllocsRegress > 0 {
		bad := false
		for _, d := range rep.Deltas {
			if d.AllocsPct > *maxAllocsRegress {
				fmt.Fprintf(os.Stderr, "benchjson: allocs regression: %s %.0f -> %.0f allocs/op (%+.1f%% > %.1f%%)\n",
					d.Name, d.BaseAllocsPerOp, d.AllocsPerOp, d.AllocsPct, *maxAllocsRegress)
				bad = true
			}
		}
		if bad {
			os.Exit(1)
		}
	}
}

// loadReport reads a previously emitted report from disk.
func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %v", path, err)
	}
	return rep, nil
}

// deltas pairs current benchmarks with same-named baseline entries.
func deltas(base Report, cur []Bench) []Delta {
	byName := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	pct := func(from, to float64) float64 {
		den := from
		if den < 1 {
			den = 1
		}
		return 100 * (to - from) / den
	}
	var out []Delta
	for _, b := range cur {
		old, ok := byName[b.Name]
		if !ok {
			continue
		}
		out = append(out, Delta{
			Name:            b.Name,
			BaseNsPerOp:     old.NsPerOp,
			NsPerOp:         b.NsPerOp,
			NsPct:           pct(old.NsPerOp, b.NsPerOp),
			BaseAllocsPerOp: old.AllocsPerOp,
			AllocsPerOp:     b.AllocsPerOp,
			AllocsPct:       pct(old.AllocsPerOp, b.AllocsPerOp),
		})
	}
	return out
}

// stripProcSuffix removes the trailing -GOMAXPROCS go test appends
// ("BenchmarkX/workers=2-8" → "BenchmarkX/workers=2").
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func aggregate(name string, ss []sample) Bench {
	b := Bench{Name: name, Count: len(ss), NsPerOp: ss[0].nsOp}
	var sum float64
	for _, s := range ss {
		sum += s.nsOp
		if s.nsOp < b.NsPerOp {
			b.NsPerOp = s.nsOp
		}
		if s.hasMem {
			// B/op and allocs/op are deterministic per workload; last wins.
			b.BytesPerOp = s.bOp
			b.AllocsPerOp = s.allocs
		}
	}
	b.NsPerOpMean = sum / float64(len(ss))
	return b
}

// speedups derives speedup-vs-serial rows for every family that has both a
// /workers=1 baseline and at least one wider variant.
func speedups(benches []Bench) []Speedup {
	base := make(map[string]float64)
	for _, b := range benches {
		if fam, w, ok := splitWorkers(b.Name); ok && w == 1 {
			base[fam] = b.NsPerOp
		}
	}
	var out []Speedup
	for _, b := range benches {
		fam, w, ok := splitWorkers(b.Name)
		if !ok || w == 1 {
			continue
		}
		serial, has := base[fam]
		if !has || b.NsPerOp <= 0 {
			continue
		}
		out = append(out, Speedup{Family: fam, Workers: w, NsPerOp: b.NsPerOp, Speedup: serial / b.NsPerOp})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Family != out[j].Family {
			return out[i].Family < out[j].Family
		}
		return out[i].Workers < out[j].Workers
	})
	return out
}

// splitWorkers parses "Family/workers=N" names.
func splitWorkers(name string) (family string, workers int, ok bool) {
	i := strings.Index(name, "/workers=")
	if i < 0 {
		return "", 0, false
	}
	w, err := strconv.Atoi(name[i+len("/workers="):])
	if err != nil {
		return "", 0, false
	}
	return name[:i], w, true
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
