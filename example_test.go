package privim_test

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"

	"privim"
)

// Example shows the end-to-end PrivIM* pipeline: generate a dataset, train
// under node-level DP, and select seeds on the held-out split.
func Example() {
	ds, err := privim.GenerateDataset(privim.Email, privim.DatasetOptions{
		Scale: 0.1, Seed: 1, InfluenceProb: 1,
	})
	if err != nil {
		panic(err)
	}
	res, err := privim.Train(ds.TrainSubgraph().G, privim.Config{
		Mode:         privim.ModeDual,
		Epsilon:      3,
		SubgraphSize: 10,
		HiddenDim:    8,
		Layers:       2,
		Iterations:   5,
		BatchSize:    4,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	seeds := res.SelectSeeds(ds.TestSubgraph().G, 5)
	fmt.Println("private:", res.Private)
	fmt.Println("seeds selected:", len(seeds))
	fmt.Println("budget respected:", res.EpsilonSpent <= 3.0001)
	// Output:
	// private: true
	// seeds selected: 5
	// budget respected: true
}

// ExampleCELF runs the lazy-greedy ground truth on a two-hub network.
func ExampleCELF() {
	g := privim.NewGraphWithNodes(8, true)
	for v := 1; v <= 4; v++ {
		g.AddEdge(0, privim.NodeID(v), 1)
	}
	g.AddEdge(5, 6, 1)
	g.AddEdge(5, 7, 1)

	celf := &privim.CELF{
		Model:    &privim.IC{G: g},
		Rounds:   10,
		NumNodes: g.NumNodes(),
	}
	seeds := celf.Select(2)
	ints := make([]int, len(seeds))
	for i, s := range seeds {
		ints[i] = int(s)
	}
	sort.Ints(ints)
	fmt.Println(ints)
	// Output:
	// [0 5]
}

// ExampleCalibrateSigma finds the noise multiplier for a privacy target.
func ExampleCalibrateSigma() {
	sigma, err := privim.CalibrateSigma(2, 1e-5, 100, 16, 500, 4)
	if err != nil {
		panic(err)
	}
	acc := privim.Accountant{M: 500, B: 16, Ng: 4, Sigma: sigma}
	fmt.Println("meets target:", acc.Epsilon(100, 1e-5) <= 2.0001)
	// Output:
	// meets target: true
}

// ExampleResult_SaveModel round-trips a trained model through the
// checkpoint format: the saved-then-loaded model selects exactly the
// same seeds as the in-memory original.
func ExampleResult_SaveModel() {
	ds, err := privim.GenerateDataset(privim.Email, privim.DatasetOptions{
		Scale: 0.1, Seed: 1, InfluenceProb: 1,
	})
	if err != nil {
		panic(err)
	}
	res, err := privim.Train(ds.TrainSubgraph().G, privim.Config{
		Mode:         privim.ModeDual,
		Epsilon:      3,
		SubgraphSize: 10,
		HiddenDim:    8,
		Layers:       2,
		Iterations:   3,
		BatchSize:    4,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}

	var buf bytes.Buffer
	if err := res.SaveModel(&buf); err != nil {
		panic(err)
	}
	loaded, err := privim.LoadModel(&buf)
	if err != nil {
		panic(err)
	}

	test := ds.TestSubgraph().G
	want := res.SelectSeeds(test, 5)
	got := privim.TopKScores(privim.ScoreModel(loaded, test), 5)
	fmt.Println("identical seeds:", reflect.DeepEqual(want, got))
	// Output:
	// identical seeds: true
}

// ExampleEstimateSpread evaluates a seed set under the IC model.
func ExampleEstimateSpread() {
	g := privim.NewGraphWithNodes(4, true)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	spread := privim.EstimateSpread(&privim.IC{G: g}, []privim.NodeID{0}, 1, 1)
	fmt.Println(spread)
	// Output:
	// 4
}
