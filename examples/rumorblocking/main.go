// Rumor blocking: a platform wants to immunize the most influential
// accounts (fact-check banners, rate limits) so a rumor cannot cascade —
// without the moderation pipeline itself leaking who is connected to whom.
// PrivIM identifies the top spreaders under node-level DP; the simulation
// then compares rumor reach with and without immunizing them, under both
// the Linear Threshold and SIS models the paper names as extensions.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"privim/internal/dataset"
	"privim/internal/diffusion"
	"privim/internal/graph"
	"privim/internal/privim"
)

func main() {
	ds, err := dataset.Generate(dataset.Facebook, dataset.Options{
		Scale:         0.02, // ≈450 pages
		Seed:          11,
		InfluenceProb: 0.2, // uniform rumor transmission probability
	})
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	fmt.Printf("network: |V|=%d |E|=%d\n", g.NumNodes(), g.NumEdges())

	// Identify likely super-spreaders privately (ε=2).
	res, err := privim.Train(ds.TrainSubgraph().G, privim.Config{
		Mode:       privim.ModeDual,
		Epsilon:    2,
		Iterations: 30,
		LossSteps:  2,
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}
	const k = 15
	blocked := res.SelectSeeds(g, k)
	fmt.Printf("privately immunized %d accounts (ε=2): %v\n\n", k, blocked)

	// The rumor starts from 5 random accounts.
	rng := rand.New(rand.NewSource(11))
	var rumorSeeds []graph.NodeID
	for len(rumorSeeds) < 5 {
		rumorSeeds = append(rumorSeeds, graph.NodeID(rng.Intn(g.NumNodes())))
	}

	immunized := immunize(g, blocked)
	const rounds = 300
	fmt.Printf("%-22s %12s %12s %10s\n", "diffusion model", "unprotected", "protected", "reduction")
	models := []struct {
		name          string
		plain, capped diffusion.Model
	}{
		{"Linear Threshold", &diffusion.LT{G: g}, &diffusion.LT{G: immunized}},
		{"SIS (recovery 0.3)", &diffusion.SIS{G: g, Recovery: 0.3, Steps: 10}, &diffusion.SIS{G: immunized, Recovery: 0.3, Steps: 10}},
		{"IC (3 steps)", &diffusion.IC{G: g, MaxSteps: 3}, &diffusion.IC{G: immunized, MaxSteps: 3}},
	}
	for _, m := range models {
		before := diffusion.Estimate(m.plain, rumorSeeds, rounds, 11)
		after := diffusion.Estimate(m.capped, rumorSeeds, rounds, 11)
		fmt.Printf("%-22s %12.1f %12.1f %9.1f%%\n", m.name, before, after, 100*(before-after)/before)
	}
	fmt.Println("\nImmunizing privately-identified influencers cuts rumor reach across")
	fmt.Println("all three diffusion models without exposing the raw follower graph.")
}

// immunize removes all outgoing influence from the blocked accounts: they
// can still hear the rumor but no longer propagate it.
func immunize(g *graph.Graph, blocked []graph.NodeID) *graph.Graph {
	drop := make(map[graph.NodeID]bool, len(blocked))
	for _, b := range blocked {
		drop[b] = true
	}
	out := graph.NewWithNodes(g.NumNodes(), true)
	for v := 0; v < g.NumNodes(); v++ {
		if drop[graph.NodeID(v)] {
			continue
		}
		for _, a := range g.Out(graph.NodeID(v)) {
			out.AddEdge(graph.NodeID(v), a.To, a.Weight)
		}
	}
	return out
}
