// Max coverage: the paper (§VI-C) notes the PrivIM framework extends to
// other coverage-type combinatorial optimization problems. This example
// trains a GNN with the differentiable max-coverage penalty loss — the
// same machinery as the IM loss — and compares the learned solution
// against the classic (1−1/e) greedy algorithm, with and without privacy.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"privim/internal/autodiff"
	"privim/internal/dataset"
	"privim/internal/gnn"
	"privim/internal/im"
	"privim/internal/nn"
	"privim/internal/privim"
	"privim/internal/tensor"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	g := dataset.BarabasiAlbert(300, 3, rng)
	g.SetUniformWeights(1)
	const k = 8

	greedy := gnn.GreedyMaxCover(g, k)
	greedyCov := gnn.CoverageValue(g, greedy)
	fmt.Printf("graph: |V|=%d |E|=%d  k=%d\n", g.NumNodes(), g.NumEdges(), k)
	fmt.Printf("greedy (1-1/e) covers %d nodes\n\n", greedyCov)

	model, err := gnn.New(gnn.Config{
		Kind:      gnn.GCN,
		InputDim:  dataset.NumStructuralFeatures,
		HiddenDim: 16,
		Layers:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	model.Init(rng)
	x := tensor.FromSlice(g.NumNodes(), dataset.NumStructuralFeatures, dataset.StructuralFeatures(g))

	opt := nn.NewAdam(model.Params, 0.02)
	grads := nn.NewGrads(model.Params)
	for epoch := 0; epoch < 250; epoch++ {
		tp := autodiff.NewTape()
		bound := nn.Bind(tp, model.Params)
		scores := model.Forward(tp, bound, g, x)
		loss := gnn.MaxCoverLoss(tp, g, scores, k, 1)
		tp.Backward(loss)
		nn.Collect(bound, grads)
		opt.Step(grads)
		if (epoch+1)%50 == 0 {
			chosen := im.TopKScores(model.Score(g, x), k)
			fmt.Printf("epoch %3d: learned coverage %d / greedy %d (%.1f%%)\n",
				epoch+1, gnn.CoverageValue(g, chosen), greedyCov,
				100*float64(gnn.CoverageValue(g, chosen))/float64(greedyCov))
		}
	}

	chosen := im.TopKScores(model.Score(g, x), k)
	fmt.Printf("\nlearned set %v\n", chosen)
	fmt.Printf("final: learned %d vs greedy %d\n", gnn.CoverageValue(g, chosen), greedyCov)

	// The same loss plugs straight into the DP-SGD pipeline: a node-level
	// differentially private max-cover solver is one Config field away.
	res, err := privim.Train(g, privim.Config{
		Mode:        privim.ModeDual,
		Objective:   privim.ObjectiveMaxCover,
		CoverBudget: k,
		Epsilon:     3,
		Iterations:  40,
		Seed:        21,
	})
	if err != nil {
		log.Fatal(err)
	}
	privChosen := im.TopKScores(res.Scores(g), k)
	fmt.Printf("\nprivate (ε=3) learned coverage: %d (%.1f%% of greedy)\n",
		gnn.CoverageValue(g, privChosen),
		100*float64(gnn.CoverageValue(g, privChosen))/float64(greedyCov))

	// Demonstrate the cut variant too.
	side := make([]bool, g.NumNodes())
	for v, s := range model.Score(g, x) {
		side[v] = s > 0.5
	}
	fmt.Printf("(bonus) cut induced by the cover scores: %d of %d edges\n",
		gnn.CutValue(g, side), g.NumEdges())
}
