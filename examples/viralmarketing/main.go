// Viral marketing: a company wants to gift products to influential users
// so word-of-mouth maximizes adoption, but the social graph is sensitive
// user data. This example sweeps the privacy budget ε to show the
// privacy-utility trade-off of PrivIM* against the naive PrivIM pipeline —
// the core result of the paper's Figure 5 — on a Gowalla-shaped
// location-based social network with weighted-cascade probabilities.
package main

import (
	"fmt"
	"log"

	"privim/internal/dataset"
	"privim/internal/diffusion"
	"privim/internal/graph"
	"privim/internal/im"
	"privim/internal/privim"
)

func main() {
	// Weighted cascade (w(u,v) = 1/indegree(v)) models that busy users are
	// harder to influence; InfluenceProb 0 selects it.
	ds, err := dataset.Generate(dataset.Gowalla, dataset.Options{
		Scale: 0.004, // ≈780 nodes
		Seed:  7,
	})
	if err != nil {
		log.Fatal(err)
	}
	train := ds.TrainSubgraph().G
	test := ds.TestSubgraph().G

	const k = 8
	// Multi-step IC: adoption cascades for up to 3 rounds.
	model := &diffusion.IC{G: test, MaxSteps: 3}
	const mcRounds = 200

	celf := &im.CELF{Model: model, Rounds: 50, Seed: 7, NumNodes: test.NumNodes()}
	celfSpread := diffusion.Estimate(model, celf.Select(k), mcRounds, 7)
	fmt.Printf("campaign graph: |V|=%d  CELF (no privacy) reaches %.1f users\n\n", test.NumNodes(), celfSpread)

	fmt.Printf("%8s %12s %12s %14s\n", "epsilon", "PrivIM*", "PrivIM", "PrivIM* cov.")
	for _, eps := range []float64{1, 2, 4, 6} {
		spreadDual := campaign(train, test, privim.ModeDual, eps, k, model, mcRounds)
		spreadNaive := campaign(train, test, privim.ModeNaive, eps, k, model, mcRounds)
		fmt.Printf("%8.0f %12.1f %12.1f %13.1f%%\n",
			eps, spreadDual, spreadNaive, im.CoverageRatio(spreadDual, celfSpread))
	}
	fmt.Println("\nHigher ε (weaker privacy) buys adoption; PrivIM*'s dual-stage")
	fmt.Println("sampling keeps the gap to the non-private optimum small even at ε=1.")
}

// campaign trains one private model and measures its campaign reach.
func campaign(train, test *graph.Graph, mode privim.Mode, eps float64, k int, model diffusion.Model, rounds int) float64 {
	res, err := privim.Train(train, privim.Config{
		Mode:       mode,
		Epsilon:    eps,
		Iterations: 30,
		LossSteps:  2,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	seeds := res.SelectSeeds(test, k)
	return diffusion.Estimate(model, seeds, rounds, 7)
}
