// Model zoo: run PrivIM* with each of the five GNN architectures the paper
// evaluates (Figure 9 / Appendix G) on the same dataset and privacy budget,
// reporting the coverage ratio of each — a miniature architecture study
// showing GRAT's source-normalized attention works well for IM.
package main

import (
	"fmt"
	"log"

	"privim/internal/dataset"
	"privim/internal/diffusion"
	"privim/internal/gnn"
	"privim/internal/im"
	"privim/internal/privim"
)

func main() {
	ds, err := dataset.Generate(dataset.Bitcoin, dataset.Options{
		Scale:         0.08, // ≈470 nodes
		Seed:          3,
		InfluenceProb: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	train := ds.TrainSubgraph().G
	test := ds.TestSubgraph().G

	const (
		k   = 10
		eps = 2.0
	)
	model := &diffusion.IC{G: test, MaxSteps: 1}
	celf := &im.CELF{Model: model, Rounds: 1, Seed: 3, NumNodes: test.NumNodes()}
	ref := diffusion.Estimate(model, celf.Select(k), 1, 3)
	fmt.Printf("dataset: %s (trust network), ε=%.0f, CELF reference spread %.0f\n\n", ds.Name, eps, ref)

	fmt.Printf("%-12s %10s %12s %10s\n", "architecture", "spread", "coverage", "params")
	for _, kind := range gnn.AllKinds() {
		res, err := privim.Train(train, privim.Config{
			Mode:       privim.ModeDual,
			GNNKind:    kind,
			Epsilon:    eps,
			Iterations: 30,
			Seed:       3,
		})
		if err != nil {
			log.Fatal(err)
		}
		seeds := res.SelectSeeds(test, k)
		spread := diffusion.Estimate(model, seeds, 1, 3)
		fmt.Printf("%-12s %10.0f %11.1f%% %10d\n",
			kind, spread, im.CoverageRatio(spread, ref), res.Model.Params.NumParams())
	}
	fmt.Println("\nAll five architectures train under the same node-level DP guarantee;")
	fmt.Println("the sampling scheme and accountant are architecture-agnostic.")
}
