// LDP seeding: what if there is no trusted curator at all? Each user
// perturbs their own follower list with ε-randomized response before it
// leaves their device, and the campaign server seeds by debiased noisy
// degree. This example contrasts the three trust models the paper spans:
// no privacy (degree heuristic / CELF), central DP (PrivIM*, a trusted
// curator adds calibrated noise during training), and local DP (the §VII
// future-work setting, implemented in internal/ldp).
package main

import (
	"fmt"
	"log"

	"privim/internal/dataset"
	"privim/internal/diffusion"
	"privim/internal/im"
	"privim/internal/ldp"
	"privim/internal/privim"
)

func main() {
	ds, err := dataset.Generate(dataset.LastFM, dataset.Options{
		Scale:         0.08, // ≈600 users
		Seed:          17,
		InfluenceProb: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	train := ds.TrainSubgraph().G
	test := ds.TestSubgraph().G
	const k = 10

	model := &diffusion.IC{G: test, MaxSteps: 1}
	celf := &im.CELF{Model: model, Rounds: 1, Seed: 17, NumNodes: test.NumNodes()}
	ref := diffusion.Estimate(model, celf.Select(k), 1, 17)
	degSpread := diffusion.Estimate(model, (&im.Degree{G: test}).Select(k), 1, 17)
	fmt.Printf("network: |V|=%d  CELF reaches %.0f, plain degree heuristic %.0f\n\n",
		test.NumNodes(), ref, degSpread)

	fmt.Printf("%8s %16s %16s %22s\n", "epsilon", "central (PrivIM*)", "local (RR deg.)", "degree-estimate error")
	for _, eps := range []float64{0.5, 1, 2, 4} {
		res, err := privim.Train(train, privim.Config{
			Mode: privim.ModeDual, Epsilon: eps, Iterations: 40, Seed: 17,
		})
		if err != nil {
			log.Fatal(err)
		}
		centralSpread := diffusion.Estimate(model, res.SelectSeeds(test, k), 1, 17)

		seeder := &ldp.DegreeSeeder{G: test, Epsilon: eps, Seed: 17}
		localSpread := diffusion.Estimate(model, seeder.Select(k), 1, 17)

		fmt.Printf("%8.1f %15.1f%% %15.1f%% %19.1f deg\n",
			eps,
			im.CoverageRatio(centralSpread, ref),
			im.CoverageRatio(localSpread, ref),
			ldp.ExpectedDegreeError(test.NumNodes(), eps))
	}
	fmt.Println("\nCentral DP holds its utility down to small ε because the curator")
	fmt.Println("noises only gradients; local RR must drown each user's whole")
	fmt.Println("neighbor list, so its degree estimates (±error above) and seed")
	fmt.Println("quality collapse once ε is small — the price of removing trust.")
}
