// Quickstart: train a differentially private GNN for influence
// maximization on a small synthetic social network, select seeds, and
// compare against the CELF ground truth — the whole PrivIM* pipeline in
// one file.
package main

import (
	"fmt"
	"log"

	"privim/internal/dataset"
	"privim/internal/diffusion"
	"privim/internal/im"
	"privim/internal/privim"
)

func main() {
	// 1. A LastFM-shaped social network (~380 nodes at this scale), with
	//    the paper's uniform influence probability w = 1.
	ds, err := dataset.Generate(dataset.LastFM, dataset.Options{
		Scale:         0.05,
		Seed:          42,
		InfluenceProb: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	train := ds.TrainSubgraph().G
	test := ds.TestSubgraph().G
	fmt.Printf("dataset: %s  train |V|=%d  test |V|=%d\n", ds.Name, train.NumNodes(), test.NumNodes())

	// 2. Train PrivIM* under a node-level (ε=3, δ≈1/|V|)-DP guarantee.
	//    Defaults follow the paper: 3-layer GRAT, dual-stage sampling.
	res, err := privim.Train(train, privim.Config{
		Mode:       privim.ModeDual,
		Epsilon:    3,
		Iterations: 30,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %v\n", res)
	fmt.Printf("noise: σ=%.3f multiplier, absolute scale %.3f per gradient coordinate\n", res.Sigma, res.NoiseScale)

	// 3. Select the top-k seeds on the held-out test graph.
	const k = 10
	seeds := res.SelectSeeds(test, k)
	fmt.Printf("private seed set (k=%d): %v\n", k, seeds)

	// 4. Evaluate influence spread under the 1-step IC model and compare
	//    with the non-private CELF greedy reference.
	model := &diffusion.IC{G: test, MaxSteps: 1}
	spread := diffusion.Estimate(model, seeds, 1, 42)

	celf := &im.CELF{Model: model, Rounds: 1, Seed: 42, NumNodes: test.NumNodes()}
	celfSeeds := celf.Select(k)
	celfSpread := diffusion.Estimate(model, celfSeeds, 1, 42)

	fmt.Printf("PrivIM* spread: %.0f nodes\n", spread)
	fmt.Printf("CELF    spread: %.0f nodes (non-private ground truth)\n", celfSpread)
	fmt.Printf("coverage ratio: %.1f%% at ε=%.0f\n", im.CoverageRatio(spread, celfSpread), 3.0)
}
