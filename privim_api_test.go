package privim_test

import (
	"bytes"
	"math"
	"testing"

	"privim"
)

// TestPublicAPIPipeline exercises the whole facade the way a downstream
// user would: generate, train, select, evaluate, persist.
func TestPublicAPIPipeline(t *testing.T) {
	ds, err := privim.GenerateDataset(privim.Email, privim.DatasetOptions{
		Scale: 0.15, Seed: 1, InfluenceProb: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	train := ds.TrainSubgraph().G
	test := ds.TestSubgraph().G

	res, err := privim.Train(train, privim.Config{
		Mode:         privim.ModeDual,
		Epsilon:      3,
		SubgraphSize: 10,
		HiddenDim:    8,
		Layers:       2,
		Iterations:   8,
		BatchSize:    4,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Private || res.EpsilonSpent > 3.01 {
		t.Fatalf("privacy accounting wrong: %v", res)
	}

	const k = 5
	seeds := res.SelectSeeds(test, k)
	if len(seeds) != k {
		t.Fatalf("got %d seeds", len(seeds))
	}
	ic := &privim.IC{G: test, MaxSteps: 1}
	spread := privim.EstimateSpread(ic, seeds, 1, 1)
	if spread < k {
		t.Fatalf("spread %v below seed count", spread)
	}

	celf := &privim.CELF{Model: ic, Rounds: 1, Seed: 1, NumNodes: test.NumNodes()}
	ref := privim.EstimateSpread(ic, celf.Select(k), 1, 1)
	cov := privim.CoverageRatio(spread, ref)
	if cov <= 0 || cov > 101 {
		t.Fatalf("coverage ratio %v", cov)
	}

	// Persistence round trip through the facade.
	var buf bytes.Buffer
	if err := res.Model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := privim.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Params.NumParams() != res.Model.Params.NumParams() {
		t.Fatal("checkpoint param count mismatch")
	}
}

func TestPublicAPIAccounting(t *testing.T) {
	sigma, err := privim.CalibrateSigma(2, 1e-5, 50, 16, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	acc := privim.Accountant{M: 300, B: 16, Ng: 4, Sigma: sigma}
	if eps := acc.Epsilon(50, 1e-5); eps > 2.001 {
		t.Fatalf("calibrated accountant exceeds budget: %v", eps)
	}
}

func TestPublicAPISolversAndMetrics(t *testing.T) {
	g := privim.NewGraphWithNodes(6, true)
	for v := 1; v < 6; v++ {
		g.AddEdge(0, privim.NodeID(v), 1)
	}
	if top := privim.TopKScores([]float64{0.9, 0.1, 0.5}, 1); len(top) != 1 || top[0] != 0 {
		t.Fatalf("TopKScores = %v", top)
	}
	deg := &privim.DegreeSolver{G: g}
	if s := deg.Select(1); s[0] != 0 {
		t.Fatalf("degree solver picked %v", s)
	}
	imm := &privim.IMM{G: g, Seed: 1}
	if s := imm.Select(1); s[0] != 0 {
		t.Fatalf("IMM picked %v", s)
	}
	if cov := privim.CoverageValue(g, privim.GreedyMaxCover(g, 1)); cov != 6 {
		t.Fatalf("greedy cover = %d, want 6", cov)
	}
	if cc := privim.ClusteringCoefficient(g); cc != 0 {
		t.Fatalf("star clustering = %v", cc)
	}
	if cores := privim.KCore(g); cores[0] != 1 {
		t.Fatalf("star hub core = %d", cores[0])
	}
}

func TestPublicAPIAudit(t *testing.T) {
	ds, err := privim.GenerateDataset(privim.Email, privim.DatasetOptions{
		Scale: 0.1, Seed: 2, InfluenceProb: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := privim.Audit(ds.Graph, privim.AuditConfig{
		Runs:   2,
		Target: -1,
		Train: privim.Config{
			Mode: privim.ModeDual, Epsilon: 1,
			SubgraphSize: 8, HiddenDim: 4, Layers: 1, Iterations: 3, BatchSize: 2,
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy < 0.5 || math.IsNaN(rep.EmpiricalEpsLower) {
		t.Fatalf("bad audit report %+v", rep)
	}
}
