# PrivIM build/test/benchmark entry points. Everything is stdlib-only Go;
# these targets just bundle the common invocations.

GO ?= go

.PHONY: all build test vet race cover bench suite suite-paper examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/ ./internal/privim/ ./internal/diffusion/ ./internal/expt/

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Laptop-scale reproduction of every table and figure (~minutes).
suite:
	$(GO) run ./cmd/imbench -repeats 2 all

# Paper-faithful settings: full-size datasets, k=50, 5 repeats (hours).
suite-paper:
	$(GO) run ./cmd/imbench -paper all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/viralmarketing
	$(GO) run ./examples/rumorblocking
	$(GO) run ./examples/modelzoo
	$(GO) run ./examples/maxcover
	$(GO) run ./examples/ldpseeding

fuzz:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=60s -run FuzzReadEdgeList ./internal/graph/

clean:
	$(GO) clean ./...
