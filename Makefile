# PrivIM build/test/benchmark entry points. Everything is stdlib-only Go;
# these targets just bundle the common invocations.

GO ?= go

.PHONY: all build test vet lint race cover bench bench-all bench-smoke bench-diff alloc-smoke suite suite-paper examples fuzz serve-smoke crash-smoke budget-smoke trace-smoke cancel-smoke alert-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/ ./internal/obs/history/ ./internal/privim/ ./internal/diffusion/ ./internal/expt/ ./internal/serve/ ./internal/graph/ \
		./internal/parallel/ ./internal/tensor/ ./internal/autodiff/ ./internal/nn/ ./internal/im/ ./internal/ledger/ ./internal/cliutil/

cover:
	$(GO) test -cover ./...

# Worker-pool kernel benchmarks at widths 1/2/4/8, aggregated into
# BENCH_PR8.json (ns/op, allocs/op, speedup vs serial, and deltas against
# the checked-in BENCH_PR3.json baseline) by cmd/benchjson.
bench:
	$(GO) test -run '^$$' -bench=BenchmarkParallel -benchmem -count=3 . | \
		$(GO) run ./cmd/benchjson -baseline BENCH_PR3.json -o BENCH_PR8.json

# Allocation-regression gate: re-run the kernel benchmarks and fail when
# any benchmark's allocs/op regresses by more than 10% against the
# checked-in BENCH_PR3.json baseline. ns/op deltas are reported but never
# gate (wall-clock is machine-dependent; allocation counts are not).
bench-diff:
	$(GO) test -run '^$$' -bench=BenchmarkParallel -benchtime=2x -benchmem . | \
		$(GO) run ./cmd/benchjson -baseline BENCH_PR3.json -max-allocs-regress 10 -o /dev/null

# Steady-state allocation pins plus pooled-path determinism: the alloc
# floors run without -race (the race runtime drops sync.Pool Puts, so
# floors don't hold there); the workers-1-vs-N bit-equality re-runs over
# the same pooled paths run under -race.
alloc-smoke:
	$(GO) test -run 'SteadyState' -v ./internal/privim/ ./internal/diffusion/ ./internal/im/ ./internal/obs/history/ | grep -v '^=== RUN'
	$(GO) test -race -run 'WorkerInvariant|BitExact|StreamStable' \
		./internal/privim/ ./internal/diffusion/ ./internal/im/ ./internal/nn/ ./internal/tensor/ ./internal/autodiff/

# The historical full sweep: every benchmark in the repo, once.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# One iteration per kernel benchmark, then assert the JSON emitter produces
# a parseable, non-degenerate report.
bench-smoke:
	$(GO) test -run '^$$' -bench=BenchmarkParallel -benchtime=1x -benchmem . | $(GO) run ./cmd/benchjson -validate -o /dev/null

# Laptop-scale reproduction of every table and figure (~minutes).
suite:
	$(GO) run ./cmd/imbench -repeats 2 all

# Paper-faithful settings: full-size datasets, k=50, 5 repeats (hours).
suite-paper:
	$(GO) run ./cmd/imbench -paper all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/viralmarketing
	$(GO) run ./examples/rumorblocking
	$(GO) run ./examples/modelzoo
	$(GO) run ./examples/maxcover
	$(GO) run ./examples/ldpseeding

fuzz:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=60s -run FuzzReadEdgeList ./internal/graph/

# Durability suite under the race detector: atomic checkpoint files,
# kill-mid-train resume equivalence, corrupt-checkpoint fallback, and
# job-table replay/recovery in the serve layer.
crash-smoke:
	$(GO) test -race -run 'Checkpoint|Resume|Recover|Crash|Corrupt|Truncat|Replay|Interrupted|Atomic' \
		./internal/nn/ ./internal/privim/ ./internal/serve/

# Privacy-budget suite under the race detector: ledger reserve/commit/
# refund lifecycle, RDP composition tightness, bit-for-bit replay, and
# the serve layer's per-tenant admission + crash accounting.
budget-smoke:
	$(GO) test -race -run 'Budget|Ledger|Refund|Forfeit|Epsilon|Compos' \
		./internal/ledger/ ./internal/dp/ ./internal/serve/

# Cancellation suite under the race detector: ForCtx chunk-boundary
# preemption, cancel-and-resume bit-identity in training, typed
# CanceledError plumbing in diffusion/IM, and the serve layer's
# DELETE-running-job / drain-grace / partial-epsilon settlement e2e.
cancel-smoke:
	$(GO) test -race -run 'Cancel|ForCtx|Preempt|DrainGrace|SelectContext|EstimateContext' \
		./internal/parallel/ ./internal/obs/ ./internal/diffusion/ \
		./internal/im/ ./internal/privim/ ./internal/serve/

# Boot privimd on a throwaway port, probe /healthz and /metrics, shut down.
serve-smoke:
	@$(GO) build -o /tmp/privimd-smoke ./cmd/privimd
	@/tmp/privimd-smoke -addr 127.0.0.1:7399 & pid=$$!; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:7399/healthz >/dev/null 2>&1 && break; \
		sleep 0.1; \
	done; \
	curl -fsS http://127.0.0.1:7399/healthz && echo && \
	curl -fsS http://127.0.0.1:7399/metrics >/dev/null && \
	echo "serve-smoke: OK"; status=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -f /tmp/privimd-smoke; exit $$status

# Alerting suite under the race detector (history rings, rule engine,
# triggered profiles, and the serve-layer ε burn-rate e2e), then a live
# check: boot privimd with an always-true heap threshold rule and a
# profile dir, and assert the alert fires on /v1/alerts, /v1/stats
# serves the series, and a pprof artifact lands in the ring.
alert-smoke:
	$(GO) test -race -run 'Alert|BurnRate|Rule|Profile|Stats|Tick|Ring' \
		./internal/obs/ ./internal/obs/history/ ./internal/serve/
	@$(GO) build -o /tmp/privimd-alert ./cmd/privimd
	@dir=$$(mktemp -d); \
	printf '[{"name":"heap-floor","metric":"go.heap_bytes","kind":"threshold","op":">=","value":1}]' > $$dir/rules.json; \
	/tmp/privimd-alert -addr 127.0.0.1:7398 -history-every 50ms \
		-alert-rules $$dir/rules.json -profile-dir $$dir/profiles & pid=$$!; \
	ok=1; \
	for i in $$(seq 1 100); do \
		curl -fsS http://127.0.0.1:7398/v1/alerts 2>/dev/null | grep -q heap-floor && ok=0 && break; \
		sleep 0.1; \
	done; \
	if [ $$ok -eq 0 ]; then \
		curl -fsS 'http://127.0.0.1:7398/v1/stats?metric=go.heap_bytes&window=1m' | grep -q '"points"' || ok=1; \
	fi; \
	if [ $$ok -eq 0 ]; then \
		ls $$dir/profiles/*.pprof >/dev/null 2>&1 || ok=1; \
	fi; \
	if [ $$ok -eq 0 ]; then echo "alert-smoke: OK"; else echo "alert-smoke: FAILED"; fi; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -rf $$dir /tmp/privimd-alert; exit $$ok

# Tiny training run with -trace-out, then validate the emitted Chrome
# trace-event JSON with tracecat.
trace-smoke:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/privim -preset email -scale 0.02 -mode non-private -iters 2 -k 2 \
		-trace-out $$dir/trace.json -journal $$dir/run.jsonl >/dev/null && \
	$(GO) run ./cmd/tracecat -check $$dir/trace.json && \
	$(GO) run ./cmd/tracecat -o $$dir/from-journal.json $$dir/run.jsonl && \
	$(GO) run ./cmd/tracecat -check $$dir/from-journal.json && \
	echo "trace-smoke: OK"; status=$$?; \
	rm -rf $$dir; exit $$status

clean:
	$(GO) clean ./...
