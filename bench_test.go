// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §3 for the experiment index). Each benchmark runs the
// corresponding internal/expt runner at laptop scale on a representative
// dataset subset and reports shape metrics (coverage ratios, spreads) via
// b.ReportMetric; the imbench CLI runs the same runners at any scale over
// all datasets.
package privim_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"privim/internal/dataset"
	"privim/internal/diffusion"
	"privim/internal/dp"
	"privim/internal/expt"
	"privim/internal/graph"
	"privim/internal/im"
	"privim/internal/obs"
	core "privim/internal/privim"
	"privim/internal/sampling"
)

// benchSettings trims the quick suite to one dataset per bench iteration so
// `go test -bench=.` finishes in minutes while exercising identical code
// paths to the full suite.
func benchSettings(datasets ...dataset.Preset) expt.Settings {
	s := expt.Quick()
	if len(datasets) > 0 {
		s.Datasets = datasets
	} else {
		s.Datasets = []dataset.Preset{dataset.Email}
	}
	s.Repeats = 1
	return s
}

func BenchmarkTableI_DatasetStats(b *testing.B) {
	s := benchSettings(dataset.AllPresets()...)
	for i := 0; i < b.N; i++ {
		rows, err := expt.RunTableI(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("got %d datasets", len(rows))
		}
	}
}

func BenchmarkFig5_SpreadVsEpsilon(b *testing.B) {
	s := benchSettings(dataset.LastFM)
	s.Epsilons = []float64{1, 3, 6}
	var lastCoverage float64
	for i := 0; i < b.N; i++ {
		pts, err := expt.RunFig5(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range pts {
			if pt.Mode == core.ModeDual && pt.Epsilon == 6 {
				lastCoverage = 100 * pt.Spread / pt.CELFSpread
			}
		}
	}
	b.ReportMetric(lastCoverage, "privim*-cov@eps6-%")
}

func BenchmarkFig5_Friendster(b *testing.B) {
	s := benchSettings()
	s.Epsilons = []float64{3}
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunFig5Friendster(s, 2, 300, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII_CoverageAblation(b *testing.B) {
	s := benchSettings(dataset.LastFM)
	var dualMinusNaive float64
	for i := 0; i < b.N; i++ {
		rows, err := expt.RunTableII(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		var naive, dual float64
		for _, r := range rows {
			if r.Epsilon == 4 {
				switch r.Mode {
				case core.ModeNaive:
					naive = r.Coverage
				case core.ModeDual:
					dual = r.Coverage
				}
			}
		}
		dualMinusNaive = dual - naive
	}
	b.ReportMetric(dualMinusNaive, "dual-minus-naive-pp")
}

func BenchmarkTableIII_TimeCost(b *testing.B) {
	s := benchSettings(dataset.Email)
	for i := 0; i < b.N; i++ {
		rows, err := expt.RunTableIII(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

func BenchmarkFig6_ThresholdM(b *testing.B) {
	s := benchSettings(dataset.Email)
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunFig6(s, []int{12}, []int{2, 4, 8}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_SubgraphSizeN(b *testing.B) {
	s := benchSettings(dataset.Email)
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunFig7(s, []int{8, 12, 20}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_Indicator(b *testing.B) {
	s := benchSettings(dataset.LastFM)
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunFig8(s, 3, 12, []int{2, 4, 8}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_GNNModels(b *testing.B) {
	s := benchSettings(dataset.Email)
	for i := 0; i < b.N; i++ {
		pts, err := expt.RunFig9(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 10 {
			b.Fatalf("got %d points", len(pts))
		}
	}
}

func BenchmarkFig13_ThetaSweep(b *testing.B) {
	s := benchSettings(dataset.Email)
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunFig13(s, []int{5, 10, 20}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15_IndicatorEpsilon(b *testing.B) {
	s := benchSettings(dataset.LastFM)
	for i := 0; i < b.N; i++ {
		for _, eps := range []float64{1, 6} {
			if _, err := expt.RunFig8(s, eps, 12, []int{2, 4, 8}, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblation_DecayFactor(b *testing.B) {
	s := benchSettings(dataset.Email)
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunAblationDecay(s, []float64{0.5, 1, 2}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_BESDivisor(b *testing.B) {
	s := benchSettings(dataset.Email)
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunAblationBESDivisor(s, []int{2, 3}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_DiffusionSteps(b *testing.B) {
	s := benchSettings(dataset.Email)
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunAblationDiffusionSteps(s, []int{1, 2}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Accountant(b *testing.B) {
	s := benchSettings()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := expt.RunAblationAccountant(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].SigmaNaive / rows[0].SigmaRDP
	}
	b.ReportMetric(ratio, "naive/rdp-sigma@eps1")
}

// --- substrate micro-benchmarks ---

func benchGraph(n int) *graph.Graph {
	rng := rand.New(rand.NewSource(1))
	g := dataset.BarabasiAlbert(n, 4, rng)
	g.SetUniformWeights(0.1)
	return g
}

func BenchmarkICSimulate(b *testing.B) {
	g := benchGraph(5000)
	ic := &diffusion.IC{G: g}
	rng := rand.New(rand.NewSource(2))
	seeds := []graph.NodeID{0, 10, 100, 1000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ic.Simulate(seeds, rng)
	}
}

func BenchmarkCELFSelect(b *testing.B) {
	g := benchGraph(400)
	for i := 0; i < b.N; i++ {
		c := &im.CELF{Model: &diffusion.IC{G: g, MaxSteps: 1}, Rounds: 1, Seed: 1, NumNodes: g.NumNodes()}
		c.Select(10)
	}
}

func BenchmarkStaticGreedySelect(b *testing.B) {
	g := benchGraph(400)
	for i := 0; i < b.N; i++ {
		s := &im.StaticGreedy{G: g, Worlds: 50, Seed: int64(i)}
		s.Select(10)
	}
}

func BenchmarkIMMSelect(b *testing.B) {
	g := benchGraph(400)
	for i := 0; i < b.N; i++ {
		s := &im.IMM{G: g, Seed: int64(i), MaxSamples: 4000}
		s.Select(10)
	}
}

func BenchmarkFastICSimulate(b *testing.B) {
	g := benchGraph(5000)
	fast := &diffusion.FastIC{CSR: graph.BuildCSR(g)}
	rng := rand.New(rand.NewSource(2))
	seeds := []graph.NodeID{0, 10, 100, 1000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fast.Simulate(seeds, rng)
	}
}

func BenchmarkSolverComparison(b *testing.B) {
	s := benchSettings(dataset.Bitcoin)
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunSolverComparison(s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLDPComparison(b *testing.B) {
	s := benchSettings(dataset.LastFM)
	s.Epsilons = []float64{1, 4}
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunLDPComparison(s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDualStageSampling(b *testing.B) {
	g := benchGraph(2000)
	cfg := sampling.FreqConfig{
		SubgraphSize: 16, Tau: 0.3, Mu: 1, SamplingRate: 0.2,
		WalkLength: 200, Threshold: 4, BESDivisor: 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := sampling.ExtractDualStage(g, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDPSGDIteration(b *testing.B) {
	// One full private training run amortized per iteration count.
	ds, err := dataset.Generate(dataset.Email, dataset.Options{Scale: 0.3, Seed: 1, InfluenceProb: 1})
	if err != nil {
		b.Fatal(err)
	}
	g := ds.TrainSubgraph().G
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Train(g, core.Config{
			Mode: core.ModeDual, Epsilon: 3, Iterations: 10,
			SubgraphSize: 12, HiddenDim: 16, Layers: 2, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if math.IsNaN(res.Sigma) {
			b.Fatal("NaN sigma")
		}
	}
}

// BenchmarkTrainNoObserver pins the observability zero-cost contract: a
// Config with a nil Observer must train at full speed, and the emit
// helpers must be allocation-free when unobserved (the boxing happens
// behind the nil check, so escape analysis removes it entirely).
func BenchmarkTrainNoObserver(b *testing.B) {
	if n := testing.AllocsPerRun(1000, func() {
		obs.Emit(nil, obs.IterationEnd{Iter: 1, Loss: 0.5, GradNorm: 2})
		obs.StartSpan(nil, "bench").Child("inner").End()
	}); n != 0 {
		b.Fatalf("nil-observer emit allocates %v per op, want 0", n)
	}
	// The context plumbing keeps the same contract: with no parent span
	// and no observer, StartSpanCtx and the accessors touch nothing on
	// the heap, so context-threaded call sites stay free when unobserved.
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		span := obs.StartSpanCtx(ctx, nil, "bench")
		_ = obs.ContextWithSpan(ctx, span)
		_ = obs.SpanFromContext(ctx)
		_ = obs.TraceFromContext(ctx)
		span.End()
	}); n != 0 {
		b.Fatalf("nil-observer context path allocates %v per op, want 0", n)
	}
	ds, err := dataset.Generate(dataset.Email, dataset.Options{Scale: 0.2, Seed: 1, InfluenceProb: 1})
	if err != nil {
		b.Fatal(err)
	}
	g := ds.TrainSubgraph().G
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Train(g, core.Config{
			Mode: core.ModeDual, Epsilon: 3, Iterations: 5,
			SubgraphSize: 12, HiddenDim: 16, Layers: 2, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.NoisyLossHistory) != 5 {
			b.Fatalf("got %d noisy losses", len(res.NoisyLossHistory))
		}
	}
}

func BenchmarkRDPAccountantEpsilon(b *testing.B) {
	a := dp.Accountant{M: 500, B: 16, Ng: 4, Sigma: 1.5}
	for i := 0; i < b.N; i++ {
		a.Epsilon(100, 1e-5)
	}
}

func BenchmarkCalibrateSigma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dp.CalibrateSigma(3, 1e-5, 100, 16, 500, 4); err != nil {
			b.Fatal(err)
		}
	}
}
