// Package privim is a differentially private graph neural network
// framework for influence maximization, reproducing "PrivIM:
// Differentially Private Graph Neural Networks for Influence Maximization"
// (ICDE 2025) in pure Go.
//
// The package is a facade over the internal implementation; a typical
// pipeline is
//
//	ds, _ := privim.GenerateDataset(privim.LastFM, privim.DatasetOptions{Scale: 0.05, Seed: 1, InfluenceProb: 1})
//	res, _ := privim.Train(ds.TrainSubgraph().G, privim.Config{Mode: privim.ModeDual, Epsilon: 3})
//	seeds := res.SelectSeeds(ds.TestSubgraph().G, 50)
//
// which trains the PrivIM* pipeline (dual-stage adaptive frequency
// sampling + DP-SGD with the Theorem-3 Rényi accountant) under node-level
// (ε, δ)-differential privacy and selects the top-k seed nodes.
//
// Subpackage map (all re-exported here where a downstream user needs them):
//
//   - internal/graph: directed weighted graphs, θ-projection, subgraphs
//   - internal/dataset: synthetic social-network generators (Table I shapes)
//   - internal/sampling: Algorithm 1 RWR and Algorithm 3 dual-stage sampling
//   - internal/dp: Gaussian/Laplace/SML mechanisms, RDP accountant, σ calibration
//   - internal/gnn: GCN / GraphSAGE / GAT / GRAT / GIN over tape autodiff
//   - internal/diffusion: IC / LT / SIS cascade simulation
//   - internal/im: CELF, greedy, degree heuristics, RIS
//   - internal/privim: the trainer, baselines, and parameter indicator
//   - internal/expt: the benchmark harness reproducing every table/figure
package privim

import (
	"context"
	"io"
	"time"

	"privim/internal/audit"
	"privim/internal/dataset"
	"privim/internal/diffusion"
	"privim/internal/dp"
	"privim/internal/gnn"
	"privim/internal/graph"
	"privim/internal/im"
	"privim/internal/obs"
	core "privim/internal/privim"
	"privim/internal/tensor"
)

// Graph types.
type (
	// Graph is a directed weighted influence graph.
	Graph = graph.Graph
	// NodeID indexes nodes within a Graph.
	NodeID = graph.NodeID
	// Subgraph is a node-induced subgraph with parent-ID mapping.
	Subgraph = graph.Subgraph
)

// NewGraph returns an empty graph; directed selects arc semantics.
func NewGraph(directed bool) *Graph { return graph.New(directed) }

// NewGraphWithNodes returns a graph with n isolated nodes.
func NewGraphWithNodes(n int, directed bool) *Graph { return graph.NewWithNodes(n, directed) }

// Dataset types.
type (
	// Dataset bundles a generated graph with its train/test split.
	Dataset = dataset.Dataset
	// DatasetOptions control synthetic dataset generation.
	DatasetOptions = dataset.Options
	// Preset names one of the paper's evaluation datasets.
	Preset = dataset.Preset
)

// The six Table I presets plus the Friendster surrogate.
const (
	Email      = dataset.Email
	Bitcoin    = dataset.Bitcoin
	LastFM     = dataset.LastFM
	HepPh      = dataset.HepPh
	Facebook   = dataset.Facebook
	Gowalla    = dataset.Gowalla
	Friendster = dataset.Friendster
)

// GenerateDataset builds the surrogate dataset for a preset.
func GenerateDataset(p Preset, opts DatasetOptions) (*Dataset, error) {
	return dataset.Generate(p, opts)
}

// LoadSNAP parses a real SNAP-format edge list ('#' comments, whitespace
// "from to" pairs, sparse IDs remapped densely) so downloaded originals of
// the paper's datasets run through the same pipeline as the surrogates.
func LoadSNAP(r io.Reader, directed bool) (*Graph, error) {
	return dataset.LoadSNAP(r, directed)
}

// DatasetFromGraph wraps an externally loaded graph into a Dataset with
// the paper's 50/50 split and influence weighting.
func DatasetFromGraph(name Preset, g *Graph, opts DatasetOptions) *Dataset {
	return dataset.FromGraph(name, g, opts)
}

// Core framework types.
type (
	// Config assembles every knob of the training pipeline.
	Config = core.Config
	// Mode selects a method (PrivIM*, PrivIM, baselines).
	Mode = core.Mode
	// Result is a trained model plus its privacy accounting.
	Result = core.Result
	// Indicator is the Gamma-pdf parameter-selection indicator (§IV-C).
	Indicator = core.Indicator
)

// Method modes.
const (
	ModeNaive      = core.ModeNaive
	ModeSCS        = core.ModeSCS
	ModeDual       = core.ModeDual
	ModeNonPrivate = core.ModeNonPrivate
	ModeEGN        = core.ModeEGN
	ModeHP         = core.ModeHP
	ModeHPGRAT     = core.ModeHPGRAT
)

// Objective selects the training loss.
type Objective = core.Objective

// Training objectives (§VI-C: the framework generalizes beyond IM).
const (
	ObjectiveIM       = core.ObjectiveIM
	ObjectiveMaxCover = core.ObjectiveMaxCover
)

// Train runs the configured method's full pipeline on the training graph.
func Train(g *Graph, cfg Config) (*Result, error) { return core.Train(g, cfg) }

// TrainContext is Train under a caller context: the run's span tree
// roots under the context's span and inherits the context's trace ID
// (see ContextWithTrace), so every event is attributable to the request
// that caused it.
func TrainContext(ctx context.Context, g *Graph, cfg Config) (*Result, error) {
	return core.TrainContext(ctx, g, cfg)
}

// TrainCanceledError is the typed error TrainContext returns when its
// context fires: Partial holds the result as of the last completed
// iteration, Iter the completed-iteration count, and CheckpointPath the
// final checkpoint (when a checkpoint directory is configured) from
// which a rerun resumes bit-for-bit. errors.Is(err, context.Canceled)
// sees through it.
type TrainCanceledError = core.CanceledError

// DefaultIndicator returns the paper's fitted indicator parameters.
func DefaultIndicator() Indicator { return core.DefaultIndicator() }

// GNN architectures.
type GNNKind = gnn.Kind

// Supported GNN architectures (§V-E / Appendix G).
const (
	GCN       = gnn.GCN
	GraphSAGE = gnn.GraphSAGE
	GAT       = gnn.GAT
	GRAT      = gnn.GRAT
	GIN       = gnn.GIN
)

// Diffusion models.
type (
	// DiffusionModel simulates influence cascades.
	DiffusionModel = diffusion.Model
	// IC is the Independent Cascade model (Definition 6).
	IC = diffusion.IC
	// LT is the Linear Threshold model.
	LT = diffusion.LT
	// SIS is the Susceptible-Infectious-Susceptible model.
	SIS = diffusion.SIS
)

// EstimateSpread Monte-Carlo-estimates the influence spread of seeds.
func EstimateSpread(m DiffusionModel, seeds []NodeID, rounds int, seed int64) float64 {
	return diffusion.Estimate(m, seeds, rounds, seed)
}

// EstimateSpreadObserved is EstimateSpread with live telemetry: a
// non-nil observer receives one MCBatchDone event for the batch.
func EstimateSpreadObserved(m DiffusionModel, seeds []NodeID, rounds int, seed int64, o Observer) float64 {
	return diffusion.EstimateObserved(m, seeds, rounds, seed, o)
}

// EstimateSpreadContext is EstimateSpreadObserved under a caller
// context: cancellation is honored between simulation chunks, returning
// a *SpreadCanceledError. A run that completes is bit-identical to
// EstimateSpread at any worker count.
func EstimateSpreadContext(ctx context.Context, m DiffusionModel, seeds []NodeID, rounds int, seed int64, o Observer) (float64, error) {
	return diffusion.EstimateContext(ctx, m, seeds, rounds, seed, o)
}

// SpreadCanceledError reports a spread estimation stopped early, with
// how many Monte-Carlo rounds had completed.
type SpreadCanceledError = diffusion.CanceledError

// SelectCanceledError reports a seed-selection solve (CELF, greedy,
// RIS, IMM SelectContext) stopped early; Seeds holds the valid greedy
// prefix selected so far, nil when cancellation hit before the first
// pick.
type SelectCanceledError = im.CanceledError

// Observability. Set Config.Observer to watch a run live: spans over
// Modules 1–3, per-iteration loss/clip/ε telemetry, extraction and
// Monte-Carlo histograms. See the README's Observability section.
type (
	// Observer consumes typed pipeline events; nil disables all
	// instrumentation at zero cost.
	Observer = obs.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = obs.ObserverFunc
	// Event is one typed pipeline occurrence.
	Event = obs.Event
	// SpanStart / SpanEnd delimit timed pipeline sections; SpanSlow flags
	// a span exceeding the slow-span watchdog threshold.
	SpanStart = obs.SpanStart
	SpanEnd   = obs.SpanEnd
	SpanSlow  = obs.SpanSlow
	// IterationEnd reports one DP-SGD iteration (loss, grad norm, clip
	// fraction, ε spent so far).
	IterationEnd = obs.IterationEnd
	// MCBatchDone reports one Monte-Carlo spread-estimation batch.
	MCBatchDone = obs.MCBatchDone
	// SeedSelected reports one greedy/CELF seed pick.
	SeedSelected = obs.SeedSelected
	// ExtractionDone summarizes one subgraph-extraction stage.
	ExtractionDone = obs.ExtractionDone
	// CheckpointSaved / CheckpointResumed / CheckpointRejected report the
	// crash-safe training checkpoint lifecycle (see the README's
	// Durability section).
	CheckpointSaved    = obs.CheckpointSaved
	CheckpointResumed  = obs.CheckpointResumed
	CheckpointRejected = obs.CheckpointRejected
	// Canceled reports a phase stopped by context cancellation, with how
	// much work was done and the fire-to-stop latency.
	Canceled = obs.Canceled
	// JSONLSink journals events as JSON lines.
	JSONLSink = obs.JSONLSink
	// MetricsRegistry aggregates events into named counters, gauges, and
	// histograms and can publish itself via expvar.
	MetricsRegistry = obs.Registry
)

// NewJSONLSink returns an Observer that appends one JSON line per event
// to w; call Flush before reading the journal.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// DecodeJournalRecord parses one journal line back into its typed event
// (a pointer to one of the event structs) and the emission timestamp.
func DecodeJournalRecord(line []byte) (Event, time.Time, error) {
	return obs.DecodeRecord(line)
}

// NewMetricsRegistry returns an empty live-metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MultiObserver fans events out to every non-nil observer (nil when none
// remain, so the result stays free to ignore).
func MultiObserver(os ...Observer) Observer { return obs.Multi(os...) }

// DebugServer is a running expvar/pprof debug endpoint with a shutdown
// handle (Addr, Shutdown, Close).
type DebugServer = obs.DebugServer

// StartDebugServer serves expvar (/debug/vars) and pprof (/debug/pprof/)
// on addr in the background, returning the live server handle; call
// Shutdown (graceful) or Close (immediate) when done with it. To also
// expose a registry in Prometheus text format at /metrics/prom, call
// obs.StartDebugServer directly with the registry.
func StartDebugServer(addr string) (*DebugServer, error) { return obs.StartDebugServer(addr, nil) }

// Trace context. A trace ID ties every span and journal record produced
// by one request/run/job together; the serving daemon mints one per HTTP
// request (echoed in the X-Privim-Trace header) and the CLIs mint one
// per run.

// NewTraceID mints a fresh random trace ID.
func NewTraceID() string { return obs.NewTraceID() }

// ContextWithTrace returns ctx carrying a trace ID for TrainContext and
// the other context-aware entry points.
func ContextWithTrace(ctx context.Context, id string) context.Context {
	return obs.ContextWithTrace(ctx, id)
}

// TraceFromContext extracts the context's trace ID ("" when absent).
func TraceFromContext(ctx context.Context) string { return obs.TraceFromContext(ctx) }

// WriteChromeTrace converts a JSONL run journal into Chrome trace-event
// JSON (Perfetto / chrome://tracing); traceFilter keeps only one trace
// ID ("" converts everything). The tracecat command wraps this.
func WriteChromeTrace(journal io.Reader, w io.Writer, traceFilter string) error {
	return obs.WriteChromeTrace(journal, w, traceFilter)
}

// Classical IM solvers.
type (
	// CELF is the lazy-greedy ground-truth solver.
	CELF = im.CELF
	// DegreeSolver is the top-degree heuristic.
	DegreeSolver = im.Degree
	// RIS is the reverse-influence-sampling baseline.
	RIS = im.RIS
)

// CoverageRatio is the paper's |V_method| / |V_CELF| metric in percent.
func CoverageRatio(methodSpread, celfSpread float64) float64 {
	return im.CoverageRatio(methodSpread, celfSpread)
}

// TopKScores selects the k highest-scoring nodes from a score vector.
func TopKScores(scores []float64, k int) []NodeID { return im.TopKScores(scores, k) }

// Privacy accounting.
type (
	// Accountant is the Theorem 3 Rényi-DP accountant.
	Accountant = dp.Accountant
)

// CalibrateSigma finds the smallest noise multiplier meeting an (ε, δ)
// target for T iterations of Algorithm 2.
func CalibrateSigma(targetEps, delta float64, t, b, m, ng int) (float64, error) {
	return dp.CalibrateSigma(targetEps, delta, t, b, m, ng)
}

// IMM is the martingale-based sampling solver (Tang et al., SIGMOD 2015).
type IMM = im.IMM

// StaticGreedy is the snapshot (live-edge worlds + SCC reachability)
// solver.
type StaticGreedy = im.StaticGreedy

// NoisyGreedy is the Example-2 strawman: Laplace-noised greedy whose
// network-scale sensitivity destroys utility — kept for demonstrations.
type NoisyGreedy = im.NoisyGreedy

// DegreeDiscount is the overlap-correcting degree heuristic.
type DegreeDiscount = im.DegreeDiscount

// Privacy auditing.
type (
	// AuditConfig configures the DP distinguishing game.
	AuditConfig = audit.Config
	// AuditReport is the game's outcome: attacker accuracy and the
	// Clopper-Pearson empirical ε lower bound.
	AuditReport = audit.Report
)

// Audit plays the node-level DP distinguishing game against a training
// pipeline and reports the empirical leakage bounds.
func Audit(g *Graph, cfg AuditConfig) (*AuditReport, error) { return audit.Run(g, cfg) }

// GNN model persistence.

// Model is a trained GNN; obtain one from Result.Model or LoadModel and
// persist it with Result.SaveModel / Model.Save.
type Model = gnn.Model

// LoadModel reads a checkpoint written by Result.SaveModel (or
// Model.Save).
func LoadModel(r io.Reader) (*Model, error) { return gnn.Load(r) }

// ScoreModel runs a (possibly checkpoint-loaded) model over g with the
// standard structural features, returning per-node seed probabilities —
// the same scoring path Result.Scores uses, available without a Result.
func ScoreModel(m *Model, g *Graph) []float64 {
	x := tensor.FromSlice(g.NumNodes(), dataset.NumStructuralFeatures, dataset.StructuralFeatures(g))
	return m.Score(g, x)
}

// Graph metrics (Table I style structural summaries).

// ClusteringCoefficient returns the average local clustering coefficient.
func ClusteringCoefficient(g *Graph) float64 { return graph.ClusteringCoefficient(g) }

// KCore returns each node's core number.
func KCore(g *Graph) []int { return graph.KCore(g) }

// Combinatorial-optimization extensions (§VI-C).

// GreedyMaxCover is the (1−1/e) greedy max-coverage reference.
func GreedyMaxCover(g *Graph, k int) []NodeID { return gnn.GreedyMaxCover(g, k) }

// CoverageValue evaluates a chosen set's coverage.
func CoverageValue(g *Graph, chosen []NodeID) int { return gnn.CoverageValue(g, chosen) }
