module privim

go 1.22
