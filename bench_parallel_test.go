// Benchmarks for the worker-pool compute kernels (internal/parallel and
// the paths threaded through it). Each family runs the same workload at
// several pool widths so `make bench` can report speedup-vs-serial;
// cmd/benchjson aggregates the output into BENCH_PR3.json. Every kernel is
// bit-for-bit deterministic across widths (see the *WorkerInvariant /
// *BitExact tests), so these measure wall-clock only.
package privim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"privim/internal/dataset"
	"privim/internal/diffusion"
	"privim/internal/graph"
	"privim/internal/im"
	"privim/internal/parallel"
	core "privim/internal/privim"
	"privim/internal/tensor"
)

// benchWorkerWidths are the pool widths every parallel family sweeps.
var benchWorkerWidths = []int{1, 2, 4, 8}

// withWorkers pins the process-wide pool width for one sub-benchmark.
func withWorkers(b *testing.B, workers int, fn func(b *testing.B)) {
	b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
		old := parallel.Limit()
		parallel.SetLimit(workers)
		defer parallel.SetLimit(old)
		fn(b)
	})
}

func BenchmarkParallelGEMM(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(n, n)
	y := tensor.New(n, n)
	x.RandUniform(1, rng)
	y.RandUniform(1, rng)
	out := tensor.New(n, n)
	for _, w := range benchWorkerWidths {
		withWorkers(b, w, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(out, x, y, false)
			}
		})
	}
}

func BenchmarkParallelDiffusion(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := dataset.BarabasiAlbert(3000, 4, rng)
	g.SetUniformWeights(0.1)
	model := &diffusion.IC{G: g}
	seeds := []graph.NodeID{0, 10, 100, 1000}
	for _, w := range benchWorkerWidths {
		withWorkers(b, w, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				diffusion.Estimate(model, seeds, 200, 7)
			}
		})
	}
}

func BenchmarkParallelRRSets(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := dataset.BarabasiAlbert(2000, 4, rng)
	g.SetUniformWeights(0.1)
	for _, w := range benchWorkerWidths {
		withWorkers(b, w, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := &im.RIS{G: g, Samples: 2000, Seed: 11}
				r.Select(5)
			}
		})
	}
}

func BenchmarkParallelDPSGD(b *testing.B) {
	ds, err := dataset.Generate(dataset.Email, dataset.Options{Scale: 0.3, Seed: 1, InfluenceProb: 1})
	if err != nil {
		b.Fatal(err)
	}
	g := ds.TrainSubgraph().G
	for _, w := range benchWorkerWidths {
		withWorkers(b, w, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Train(g, core.Config{
					Mode: core.ModeDual, Epsilon: 3, Iterations: 5,
					SubgraphSize: 12, HiddenDim: 16, Layers: 2, Seed: 9,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
